package fcatch_test

import (
	"fmt"
	"testing"

	"fcatch"
)

// TestExplainSumAcrossWorkloads pins the explain contract on all six
// workloads: every candidate the detectors judge gets exactly one verdict, so
// the per-rule kill counts always sum to the candidate count, the kept counts
// agree with the surviving reports, and the metrics counters agree with the
// decision trail.
func TestExplainSumAcrossWorkloads(t *testing.T) {
	for _, w := range fcatch.Workloads() {
		t.Run(w.Name(), func(t *testing.T) {
			opts := fcatch.DefaultOptions()
			opts.Detect.Explain = true
			opts.Metrics = fcatch.NewMetrics()
			res, err := fcatch.Detect(w, opts)
			if err != nil {
				t.Fatal(err)
			}
			ds := fcatch.ExplainDecisions(res)
			kt := fcatch.KillTable(ds)

			sum := 0
			for _, rule := range fcatch.PruneRuleNames() {
				sum += kt[rule]
			}
			if sum != len(ds) {
				t.Errorf("rule counts sum to %d, want %d (one verdict per candidate)", sum, len(ds))
			}
			for rule := range kt {
				found := false
				for _, known := range fcatch.PruneRuleNames() {
					if rule == known {
						found = true
					}
				}
				if !found {
					t.Errorf("decision with unknown rule %q", rule)
				}
			}

			// Kept crash-regular decisions are post-dedup: exactly the
			// surviving reports. Kept crash-recovery decisions are pre-dedup:
			// at least the surviving reports.
			regKept, recKept := 0, 0
			for _, d := range ds {
				if d.Rule != fcatch.RuleKept {
					continue
				}
				if d.Detector == fcatch.CrashRegularBug.String() {
					regKept++
				} else {
					recKept++
				}
			}
			if regKept != len(res.Regular.Reports) {
				t.Errorf("crash-regular kept = %d, want %d reports", regKept, len(res.Regular.Reports))
			}
			if recKept < len(res.Recovery.Reports) {
				t.Errorf("crash-recovery kept = %d, want >= %d reports", recKept, len(res.Recovery.Reports))
			}

			// The per-rule metrics counters are the kill table.
			snap := opts.Metrics.Snapshot()
			for _, rule := range fcatch.PruneRuleNames() {
				if got := snap.Counters["detect/rule/"+rule]; got != int64(kt[rule]) {
					t.Errorf("counter detect/rule/%s = %d, kill table says %d", rule, got, kt[rule])
				}
			}
		})
	}
}

// TestMetricsAndExplainAreObserveOnly pins the determinism contract: turning
// on metrics and explain changes no report, window, or compound finding.
func TestMetricsAndExplainAreObserveOnly(t *testing.T) {
	render := func(opts fcatch.Options) string {
		w := fcatch.MustWorkload("HB2")
		res, err := fcatch.Detect(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, r := range res.Reports {
			out += fmt.Sprintf("w%d %s\n", r.WindowID, r)
		}
		out += fcatch.RenderWindows(res) + fcatch.RenderCompound(res)
		return out
	}
	plain := render(fcatch.DefaultOptions())
	instrumented := fcatch.DefaultOptions()
	instrumented.Detect.Explain = true
	instrumented.Metrics = fcatch.NewMetrics()
	if got := render(instrumented); got != plain {
		t.Errorf("instrumented detection diverged from plain run:\n--- plain ---\n%s--- instrumented ---\n%s", plain, got)
	}
}
